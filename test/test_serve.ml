(* The serving layer: (1) a qcheck shadow model drives the pure
   Admission core through random submit/dispatch/cancel/complete
   interleavings and checks the linear protocol — no lost requests,
   no double dispatch, bounded queue, exact accounting; (2) the
   deficit-weighted round-robin dispatch order is deterministic;
   (3) a concurrent soak: submitting domains race mixed
   tier × schedule requests through the server and every response is
   bitwise-identical to a sequential Driver.run twin; (4) lifecycle —
   shutdown drains in-flight work without deadlock or dropped
   completions, and a poisoned request leaves the worker, its engine
   and the shared plan cache usable. *)

open Mg_withloop
open Mg_core
module Serve = Mg_serve.Serve
module Admission = Mg_serve.Admission

(* ------------------------------------------------------------------ *)
(* 1. Shadow model (qcheck)                                            *)

module Model = struct
  type state = Queued | Dispatched | Completed | Cancelled

  type t = {
    cap : int;
    entries : (int, string * state ref) Hashtbl.t;
    mutable order : int list;  (* submission order, newest first *)
    mutable draining : bool;
    mutable submitted : int;
    mutable accepted : int;
    mutable rejected : int;
    mutable cancelled : int;
    mutable dispatched : int;
    mutable completed : int;
  }

  let create cap =
    { cap;
      entries = Hashtbl.create 32;
      order = [];
      draining = false;
      submitted = 0;
      accepted = 0;
      rejected = 0;
      cancelled = 0;
      dispatched = 0;
      completed = 0;
    }

  let queued m = m.accepted - m.cancelled - m.dispatched
  let in_flight m = m.dispatched - m.completed

  let reject m =
    m.rejected <- m.rejected + 1;
    `Rejected

  let submit m tenant =
    m.submitted <- m.submitted + 1;
    if m.draining then reject m
    else if queued m >= m.cap then reject m
    else begin
      let id = m.accepted in
      (* ids are consecutive over accepted requests *)
      m.accepted <- m.accepted + 1;
      Hashtbl.add m.entries id (tenant, ref Queued);
      m.order <- id :: m.order;
      `Accepted id
    end

  let state m id = !(snd (Hashtbl.find m.entries id))

  let cancel m id =
    match Hashtbl.find_opt m.entries id with
    | Some (_, s) when !s = Queued ->
        s := Cancelled;
        m.cancelled <- m.cancelled + 1;
        true
    | _ -> false

  let dispatch m id =
    let _, s = Hashtbl.find m.entries id in
    assert (!s = Queued);
    s := Dispatched;
    m.dispatched <- m.dispatched + 1

  let complete m id =
    let _, s = Hashtbl.find m.entries id in
    assert (!s = Dispatched);
    s := Completed;
    m.completed <- m.completed + 1

  (* The oldest still-queued id of [tenant]: what FIFO demands the
     next dispatch of that tenant returns. *)
  let fifo_head m tenant =
    List.fold_left
      (fun acc id ->
        match Hashtbl.find_opt m.entries id with
        | Some (t, s) when t = tenant && !s = Queued -> Some id
        | _ -> acc)
      None m.order

  let ids_in m st =
    Hashtbl.fold (fun id (_, s) acc -> if !s = st then id :: acc else acc) m.entries []
end

(* One random operation; the interpretation below picks targets from
   the model's live sets so every branch gets exercised. *)
type op = Submit of int * int | Dispatch | Cancel of int | Complete of int | Drain

let op_gen =
  QCheck.Gen.(
    frequency
      [ (5, map2 (fun t w -> Submit (t, w)) (int_range 0 3) (int_range 1 3));
        (4, return Dispatch);
        (2, map (fun k -> Cancel k) (int_range 0 40));
        (3, map (fun k -> Complete k) (int_range 0 40));
        (1, return Drain);
      ])

let op_print = function
  | Submit (t, w) -> Printf.sprintf "submit t%d w%d" t w
  | Dispatch -> "dispatch"
  | Cancel k -> Printf.sprintf "cancel #%d" k
  | Complete k -> Printf.sprintf "complete #%d" k
  | Drain -> "drain"

let ops_arb =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map op_print ops))
    QCheck.Gen.(list_size (int_range 1 120) op_gen)

let nth_mod l k = match l with [] -> None | _ -> Some (List.nth l (k mod List.length l))

let stats_agree (a : Admission.stats) m =
  a.Admission.submitted = m.Model.submitted
  && a.Admission.accepted = m.Model.accepted
  && a.Admission.rejected = m.Model.rejected
  && a.Admission.cancelled = m.Model.cancelled
  && a.Admission.dispatched = m.Model.dispatched
  && a.Admission.completed = m.Model.completed
  && a.Admission.queued = Model.queued m
  && a.Admission.in_flight = Model.in_flight m
  (* the linear protocol's conservation laws *)
  && a.Admission.submitted = a.Admission.accepted + a.Admission.rejected
  && a.Admission.accepted
     = a.Admission.queued + a.Admission.cancelled + a.Admission.dispatched
  && a.Admission.dispatched = a.Admission.in_flight + a.Admission.completed
  && a.Admission.queued >= 0
  && a.Admission.queued <= m.Model.cap

let qcheck_shadow_model =
  QCheck.Test.make ~name:"admission matches shadow model" ~count:300
    QCheck.(pair (int_range 1 8) ops_arb)
    (fun (cap, ops) ->
      let cap = max 1 cap in  (* the shrinker may leave the generator's range *)
      let t = Admission.create ~capacity:cap () in
      let m = Model.create cap in
      let tenant k = Printf.sprintf "t%d" k in
      let step op =
        (match op with
        | Submit (tk, w) -> (
            let name = tenant tk in
            match (Admission.submit t ~tenant:name ~weight:w (), Model.submit m name) with
            | Ok id, `Accepted mid -> if id <> mid then failwith "ticket id diverged"
            | Error _, `Rejected -> ()
            | Ok _, `Rejected -> failwith "impl accepted, model rejected"
            | Error _, `Accepted _ -> failwith "impl rejected, model accepted")
        | Dispatch -> (
            match Admission.dispatch t with
            | None ->
                if Model.queued m <> 0 then failwith "dispatch returned None with work queued"
            | Some (id, tn, ()) ->
                if Model.queued m = 0 then failwith "dispatch invented work";
                if Model.state m id <> Model.Queued then failwith "double dispatch / ghost";
                (* per-tenant FIFO *)
                (match Model.fifo_head m tn with
                | Some h when h = id -> ()
                | _ -> failwith "dispatch broke tenant FIFO order");
                Model.dispatch m id)
        | Cancel k -> (
            (* aim at a live queued id when one exists, else a random
               resolved one (must report false) *)
            let target =
              match nth_mod (List.sort compare (Model.ids_in m Model.Queued)) k with
              | Some id -> Some id
              | None -> nth_mod (List.sort compare (Model.ids_in m Model.Completed)) k
            in
            match target with
            | None -> ()
            | Some id ->
                let got = Admission.cancel t id in
                let want = Model.cancel m id in
                if got <> want then failwith "cancel verdict diverged")
        | Complete k -> (
            match nth_mod (List.sort compare (Model.ids_in m Model.Dispatched)) k with
            | Some id ->
                Admission.complete t id;
                Model.complete m id
            | None -> (
                (* no in-flight work: completing anything must raise *)
                match nth_mod (List.sort compare (Model.ids_in m Model.Completed)) k with
                | None -> ()
                | Some id -> (
                    match Admission.complete t id with
                    | () -> failwith "complete of a resolved id did not raise"
                    | exception Invalid_argument _ -> ())))
        | Drain ->
            Admission.drain t;
            m.Model.draining <- true);
        if not (stats_agree (Admission.stats t) m) then failwith "stats diverged"
      in
      List.iter step ops;
      (* Drain to the end: in-flight work completes, everything queued
         can still dispatch and complete; nothing is lost. *)
      List.iter
        (fun id ->
          Admission.complete t id;
          Model.complete m id)
        (Model.ids_in m Model.Dispatched);
      let rec flush () =
        match Admission.dispatch t with
        | None -> ()
        | Some (id, _, ()) ->
            Model.dispatch m id;
            Admission.complete t id;
            Model.complete m id;
            flush ()
      in
      flush ();
      let a = Admission.stats t in
      stats_agree a m && a.Admission.queued = 0 && a.Admission.in_flight = 0
      && a.Admission.accepted = a.Admission.completed + a.Admission.cancelled)

(* ------------------------------------------------------------------ *)
(* 2. Weighted round-robin dispatch order is deterministic             *)

let test_wrr_order () =
  let t = Admission.create ~capacity:16 () in
  for _ = 1 to 6 do
    ignore (Admission.submit t ~tenant:"a" ~weight:2 ())
  done;
  for _ = 1 to 3 do
    ignore (Admission.submit t ~tenant:"b" ~weight:1 ())
  done;
  let order = ref [] in
  let rec go () =
    match Admission.dispatch t with
    | Some (id, tn, ()) ->
        order := tn :: !order;
        Admission.complete t id;
        go ()
    | None -> ()
  in
  go ();
  (* First rotation runs on the creation credit (1 each); every later
     rotation refills to the submitted weights 2:1. *)
  Alcotest.(check (list string))
    "a:2,b:1 saturation order"
    [ "a"; "b"; "a"; "a"; "b"; "a"; "a"; "b"; "a" ]
    (List.rev !order);
  let s = Admission.stats t in
  Alcotest.(check int) "all completed" 9 s.Admission.completed

let test_wrr_idle_tenant_passes () =
  let t = Admission.create ~capacity:8 () in
  (* "a" exists in the rotation but has no work: must not stall it. *)
  ignore (Admission.submit t ~tenant:"a" ~weight:3 ());
  (match Admission.dispatch t with
  | Some (id, "a", ()) -> Admission.complete t id
  | _ -> Alcotest.fail "expected a's only request");
  ignore (Admission.submit t ~tenant:"b" ~weight:1 ());
  ignore (Admission.submit t ~tenant:"c" ~weight:1 ());
  let tenants =
    List.init 2 (fun _ ->
        match Admission.dispatch t with
        | Some (id, tn, ()) ->
            Admission.complete t id;
            tn
        | None -> "-")
  in
  Alcotest.(check (list string)) "idle tenant passes its turn" [ "b"; "c" ] tenants

(* ------------------------------------------------------------------ *)
(* 3. Concurrent soak: served rnm2 ≡ sequential twin, bitwise          *)

let bits = Int64.bits_of_float

let soak_specs =
  (* tier × schedule mix over the fast classes plus class S — every
     combination the bench's --kernels/--scheds axes expose. *)
  let open Mg_smp.Sched_policy in
  [ Serve.spec ~tier:Serve.Generic ~sched:Static_block ~impl:Driver.Sac ~cls:Classes.tiny ();
    Serve.spec ~tier:Serve.Cfun ~sched:(Dynamic_chunked 2) ~impl:Driver.Sac ~cls:Classes.tiny ();
    Serve.spec ~tier:Serve.Native
      ~sched:(Tiled { planes = 2; rows = 8 })
      ~impl:Driver.Sac ~cls:Classes.mini ();
    Serve.spec ~tier:Serve.Cfun ~sched:Static_block ~impl:Driver.Sac ~cls:Classes.class_s ();
  ]

let test_soak_bitwise () =
  let cfg = { (Serve.default_config ()) with Serve.workers = 2; capacity = 128 } in
  let server = Serve.create ~config:cfg () in
  let n_domains = 4 and per_domain = 6 in
  let submitter d () =
    List.init per_domain (fun k ->
        let spec = List.nth soak_specs ((d + k) mod List.length soak_specs) in
        let tenant = Printf.sprintf "tenant%d" (d mod 2) in
        match Serve.submit server (Serve.request ~tenant (Serve.Solve spec)) with
        | Error r -> Error (Admission.reject_to_string r)
        | Ok ticket -> (
            match Serve.await server ticket with
            | Serve.Done resp -> Ok (spec, resp)
            | Serve.Failed m -> Error m
            | Serve.Cancelled -> Error "cancelled"))
  in
  let doms = Array.init n_domains (fun d -> Domain.spawn (submitter d)) in
  let results = Array.to_list (Array.map Domain.join doms) |> List.concat in
  Serve.shutdown server;
  let ok, err = List.partition_map (function Ok x -> Left x | Error e -> Right e) results in
  Alcotest.(check (list string)) "no failed/rejected requests" [] err;
  Alcotest.(check int) "all requests served" (n_domains * per_domain) (List.length ok);
  List.iter
    (fun (_, (r : Serve.response)) ->
      Alcotest.(check bool) "response verified" true r.Serve.verified)
    ok;
  (* One sequential twin per distinct spec, on a fresh engine with the
     workers' configuration. *)
  List.iteri
    (fun i spec ->
      let served =
        List.filter_map (fun (s, r) -> if s == spec then Some r else None) ok
      in
      Alcotest.(check bool) (Printf.sprintf "spec %d exercised" i) true (served <> []);
      let e =
        Engine.create
          ~config:{ cfg.Serve.engine_config with Engine.threads = cfg.Serve.solver_threads }
          ()
      in
      let cfun, native =
        match spec.Serve.tier with
        | Some Serve.Generic -> (Some false, Some false)
        | Some Serve.Cfun -> (Some true, Some false)
        | Some Serve.Native -> (Some true, Some true)
        | None -> (None, None)
      in
      let twin =
        Fun.protect
          ~finally:(fun () -> Engine.shutdown e)
          (fun () ->
            Driver.run ~engine:e ?sched:spec.Serve.sched ?cfun ?native ~impl:spec.Serve.impl
              ~cls:spec.Serve.cls ())
      in
      List.iter
        (fun (r : Serve.response) ->
          Alcotest.(check int64)
            (Printf.sprintf "spec %d rnm2 bitwise == sequential twin" i)
            (bits twin.Driver.rnm2) (bits r.Serve.rnm2))
        served)
    soak_specs;
  let s = Serve.stats server in
  Alcotest.(check int) "accounting: accepted" (n_domains * per_domain) s.Admission.accepted;
  Alcotest.(check int) "accounting: completed" (n_domains * per_domain) s.Admission.completed;
  Alcotest.(check int) "accounting: nothing left" 0 (s.Admission.queued + s.Admission.in_flight)

(* ------------------------------------------------------------------ *)
(* 4. Lifecycle                                                        *)

let gate_payload gate = Serve.Custom (fun () -> Semaphore.Counting.acquire gate; 42.0)

let tiny_solve = Serve.Solve (Serve.spec ~tier:Serve.Cfun ~impl:Driver.Sac ~cls:Classes.tiny ())

(* Workers pick jobs up as soon as they are queued; wait until both
   gate customs are actually in flight before queueing behind them. *)
let wait_in_flight server n =
  let deadline = Unix.gettimeofday () +. 5.0 in
  while (Serve.stats server).Admission.in_flight < n && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.002
  done;
  Alcotest.(check int) "workers picked up the gates" n (Serve.stats server).Admission.in_flight

let test_shutdown_drains () =
  let cfg = { (Serve.default_config ()) with Serve.workers = 2; capacity = 16 } in
  let server = Serve.create ~config:cfg () in
  let gate = Semaphore.Counting.make 0 in
  let blocked =
    List.init 2 (fun _ -> Result.get_ok (Serve.submit server (Serve.request (gate_payload gate))))
  in
  wait_in_flight server 2;
  let queued =
    List.init 4 (fun _ -> Result.get_ok (Serve.submit server (Serve.request tiny_solve)))
  in
  (* Open the gates from a helper domain while shutdown is already
     joining the workers — the drain must not deadlock on in-flight
     work and must run everything still queued. *)
  let releaser =
    Domain.spawn (fun () ->
        Unix.sleepf 0.05;
        Semaphore.Counting.release gate;
        Semaphore.Counting.release gate)
  in
  Serve.shutdown ~drain:true server;
  Domain.join releaser;
  (match Serve.submit server (Serve.request tiny_solve) with
  | Error Admission.Draining -> ()
  | _ -> Alcotest.fail "submit after shutdown must refuse with Draining");
  List.iter
    (fun tk ->
      match Serve.await server tk with
      | Serve.Done r -> Alcotest.(check (float 0.0)) "custom result" 42.0 r.Serve.rnm2
      | _ -> Alcotest.fail "blocked request dropped")
    blocked;
  List.iter
    (fun tk ->
      match Serve.await server tk with
      | Serve.Done r -> Alcotest.(check bool) "drained solve verified" true r.Serve.verified
      | _ -> Alcotest.fail "queued request dropped by drain")
    queued;
  let s = Serve.stats server in
  Alcotest.(check int) "all six completed" 6 s.Admission.completed;
  Alcotest.(check int) "none cancelled" 0 s.Admission.cancelled

let test_shutdown_no_drain_cancels () =
  let cfg = { (Serve.default_config ()) with Serve.workers = 1; capacity = 16 } in
  let server = Serve.create ~config:cfg () in
  let gate = Semaphore.Counting.make 0 in
  let blocked = Result.get_ok (Serve.submit server (Serve.request (gate_payload gate))) in
  wait_in_flight server 1;
  let queued =
    List.init 3 (fun _ -> Result.get_ok (Serve.submit server (Serve.request tiny_solve)))
  in
  let releaser =
    Domain.spawn (fun () ->
        Unix.sleepf 0.05;
        Semaphore.Counting.release gate)
  in
  Serve.shutdown ~drain:false server;
  Domain.join releaser;
  (match Serve.await server blocked with
  | Serve.Done _ -> ()
  | _ -> Alcotest.fail "in-flight request must still complete");
  List.iter
    (fun tk ->
      match Serve.await server tk with
      | Serve.Cancelled -> ()
      | _ -> Alcotest.fail "queued request must be cancelled by drain:false")
    queued;
  let s = Serve.stats server in
  Alcotest.(check int) "one completed" 1 s.Admission.completed;
  Alcotest.(check int) "three cancelled" 3 s.Admission.cancelled

let test_poisoned_request () =
  let cfg = { (Serve.default_config ()) with Serve.workers = 1; capacity = 8 } in
  let server = Serve.create ~config:cfg () in
  Fun.protect
    ~finally:(fun () -> Serve.shutdown server)
    (fun () ->
      let bad =
        Result.get_ok
          (Serve.submit server (Serve.request (Serve.Custom (fun () -> failwith "poison"))))
      in
      (match Serve.await server bad with
      | Serve.Failed msg ->
          let contains s sub =
            let n = String.length sub in
            let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
            go 0
          in
          Alcotest.(check bool) "failure carries the exception" true (contains msg "poison")
      | _ -> Alcotest.fail "poisoned request must resolve Failed");
      (* The worker, its engine, the arena and the shared plan cache
         all survive: the very next solves succeed and the second one
         replays the first one's plans from the cache. *)
      let solve () =
        match Serve.await server (Result.get_ok (Serve.submit server (Serve.request tiny_solve))) with
        | Serve.Done r -> r
        | _ -> Alcotest.fail "solve after poison failed"
      in
      let r1 = solve () in
      let h0 = (Engine.cache_stats (List.hd (Serve.engines server))).Plan_cache.hits in
      let r2 = solve () in
      let h1 = (Engine.cache_stats (List.hd (Serve.engines server))).Plan_cache.hits in
      Alcotest.(check int64) "post-poison solves agree bitwise" (bits r1.Serve.rnm2)
        (bits r2.Serve.rnm2);
      Alcotest.(check bool) "plan cache still serving hits" true (h1 > h0);
      let s = Serve.stats server in
      Alcotest.(check int) "exactly three completions" 3 s.Admission.completed)

let test_rejection_and_cancel () =
  let cfg = { (Serve.default_config ()) with Serve.workers = 1; capacity = 1 } in
  let server = Serve.create ~config:cfg () in
  let gate = Semaphore.Counting.make 0 in
  let blocked = Result.get_ok (Serve.submit server (Serve.request (gate_payload gate))) in
  wait_in_flight server 1;
  (* capacity 1: one queued request fits, the next is refused. *)
  let queued = Result.get_ok (Serve.submit server (Serve.request tiny_solve)) in
  (match Serve.submit server (Serve.request tiny_solve) with
  | Error Admission.Queue_full -> ()
  | _ -> Alcotest.fail "over-capacity submit must refuse with Queue_full");
  Alcotest.(check bool) "cancel of queued request" true (Serve.cancel server queued);
  Alcotest.(check bool) "second cancel is a no-op" false (Serve.cancel server queued);
  (match Serve.await server queued with
  | Serve.Cancelled -> ()
  | _ -> Alcotest.fail "cancelled ticket must resolve Cancelled");
  Semaphore.Counting.release gate;
  Serve.shutdown server;
  (match Serve.await server blocked with
  | Serve.Done _ -> ()
  | _ -> Alcotest.fail "gated request must complete");
  Alcotest.check_raises "await of a never-issued ticket raises"
    (Invalid_argument "Serve: unknown ticket 99") (fun () -> ignore (Serve.await server 99));
  let s = Serve.stats server in
  Alcotest.(check int) "submitted" 3 s.Admission.submitted;
  Alcotest.(check int) "accepted" 2 s.Admission.accepted;
  Alcotest.(check int) "rejected" 1 s.Admission.rejected;
  Alcotest.(check int) "cancelled" 1 s.Admission.cancelled;
  Alcotest.(check int) "completed" 1 s.Admission.completed

let suite =
  ( "serve",
    [ QCheck_alcotest.to_alcotest qcheck_shadow_model;
      Alcotest.test_case "weighted round-robin order deterministic" `Quick test_wrr_order;
      Alcotest.test_case "idle tenant passes its turn" `Quick test_wrr_idle_tenant_passes;
      Alcotest.test_case "concurrent soak bitwise == sequential twins" `Quick test_soak_bitwise;
      Alcotest.test_case "shutdown drains in-flight and queued work" `Quick test_shutdown_drains;
      Alcotest.test_case "shutdown drain:false cancels queued work" `Quick
        test_shutdown_no_drain_cancels;
      Alcotest.test_case "poisoned request leaves server usable" `Quick test_poisoned_request;
      Alcotest.test_case "admission refuses and cancel resolves" `Quick
        test_rejection_and_cancel;
    ] )
