open Mg_core

let test_norm2u3 () =
  (* A 2^3 interior with known values inside an extent-4 cube. *)
  let n = 2 in
  let g = Mg_ndarray.Ndarray.create [| 4; 4; 4 |] in
  (* Fill ghosts with garbage that the norm must ignore. *)
  Mg_ndarray.Ndarray.fill g 99.0;
  let idx i3 i2 i1 = ((i3 * 4) + i2) * 4 + i1 in
  let vals = [ 1.0; 2.0; 3.0; 4.0; 5.0; 6.0; 7.0; 8.0 ] in
  List.iteri
    (fun k v ->
      let i1 = 1 + (k land 1) and i2 = 1 + ((k lsr 1) land 1) and i3 = 1 + (k lsr 2) in
      Mg_ndarray.Ndarray.set_flat g (idx i3 i2 i1) v)
    vals;
  let rnm2, rnmu = Verify.norm2u3 g ~n in
  let sumsq = List.fold_left (fun acc v -> acc +. (v *. v)) 0.0 vals in
  Alcotest.(check (float 1e-12)) "rnm2" (Float.sqrt (sumsq /. 8.0)) rnm2;
  Alcotest.(check (float 1e-12)) "rnmu" 8.0 rnmu

let test_check_verified () =
  let expected = Option.get Classes.class_s.Classes.verify_value in
  (match Verify.check Classes.class_s ~rnm2:(expected *. (1.0 +. 1e-9)) with
  | Verify.Verified err -> Alcotest.(check bool) "tiny error" true (err < 1e-8)
  | s -> Alcotest.failf "expected Verified, got %a" Verify.pp_status s);
  match Verify.check Classes.class_s ~rnm2:(expected *. 1.01) with
  | Verify.Failed _ -> ()
  | s -> Alcotest.failf "expected Failed, got %a" Verify.pp_status s

let test_check_no_reference () =
  Alcotest.(check bool) "custom class" true
    (Verify.check Classes.tiny ~rnm2:1.0 = Verify.No_reference)

let test_at_floor_semantics () =
  let w = Classes.class_w in
  let expected = Option.get w.Classes.verify_value in
  (* Reassociated implementation near the floor: accepted as At_floor. *)
  (match Verify.check ~exact_order:false w ~rnm2:(expected *. 1.3) with
  | Verify.At_floor _ -> ()
  | s -> Alcotest.failf "expected At_floor, got %a" Verify.pp_status s);
  (* Exact-order implementation must match strictly. *)
  (match Verify.check ~exact_order:true w ~rnm2:(expected *. 1.3) with
  | Verify.Failed _ -> ()
  | s -> Alcotest.failf "expected Failed, got %a" Verify.pp_status s);
  (* Diverged runs fail even without exact order. *)
  (match Verify.check ~exact_order:false w ~rnm2:(expected *. 100.0) with
  | Verify.Failed _ -> ()
  | s -> Alcotest.failf "expected Failed, got %a" Verify.pp_status s);
  (* Above the floor threshold the loose path never applies. *)
  match Verify.check ~exact_order:false Classes.class_s
          ~rnm2:(Option.get Classes.class_s.Classes.verify_value *. 1.3)
  with
  | Verify.Failed _ -> ()
  | s -> Alcotest.failf "expected Failed, got %a" Verify.pp_status s

let test_status_ok () =
  Alcotest.(check bool) "verified ok" true (Verify.status_ok (Verify.Verified 0.0));
  Alcotest.(check bool) "floor ok" true (Verify.status_ok (Verify.At_floor 0.1));
  Alcotest.(check bool) "no ref ok" true (Verify.status_ok Verify.No_reference);
  Alcotest.(check bool) "failed not ok" false (Verify.status_ok (Verify.Failed (1.0, 1.0)))

let test_classes_table () =
  Alcotest.(check int) "levels S" 5 (Classes.levels Classes.class_s);
  Alcotest.(check int) "levels A" 8 (Classes.levels Classes.class_a);
  Alcotest.(check int) "extent W" 66 (Classes.extent Classes.class_w);
  Alcotest.(check bool) "B uses S(b)" true (Classes.class_b.Classes.smoother = Classes.Smoother_b);
  Alcotest.(check bool) "S uses S(a)" true (Classes.class_s.Classes.smoother = Classes.Smoother_a);
  Alcotest.(check bool) "lookup" true (Classes.of_string "w128" = Some Classes.class_w128);
  Alcotest.(check bool) "unknown" true (Classes.of_string "zzz" = None)

let test_custom_class_validation () =
  Alcotest.(check bool) "rejects non power of two" true
    (try
       ignore (Classes.make_custom ~name:"x" ~nx:48 ~nit:4);
       false
     with Invalid_argument _ -> true);
  let c = Classes.make_custom ~name:"x" ~nx:16 ~nit:2 in
  Alcotest.(check int) "levels" 4 (Classes.levels c)

(* ------------------------------------------------------------------ *)
(* Golden per-iteration residual norms.                                *)
(*                                                                     *)
(* Frozen as IEEE-754 bit patterns: each implementation must reproduce *)
(* its residual-norm history bitwise, iteration by iteration.  The     *)
(* vectors were captured from a run with the buffer-reuse pass and the *)
(* arena allocator at their defaults (both on); because the suite also *)
(* runs under MG_REUSE=0 and MG_POOLING=0 in CI, a pass here certifies *)
(* that neither aliasing decisions nor the allocator change a single   *)
(* bit of the V-cycle.  The sac vectors were re-captured when the      *)
(* executor's release pass learned to consume the source edges of      *)
(* fused-away nodes: with those edges dead, producers that used to     *)
(* stay pinned become foldable and the linear-form compiler groups a   *)
(* handful of sums differently (a few ULPs over a class-W history).    *)
(* The final class-S entry corresponds to the NAS reference value      *)
(* 0.5307707005734e-04; the final class-W entries sit at the           *)
(* 0.2503914064395e-17 rounding floor.                                 *)
(* ------------------------------------------------------------------ *)

let f77_s =
  [| 0x3f68089dc95bdfd9L; 0x3f44b1684ee92a67L; 0x3f26c1563e3a335dL;
     0x3f0bd3e23d9218cfL |]

let c_s =
  [| 0x3f68089dc95bdfdaL; 0x3f44b1684ee92a69L; 0x3f26c1563e3a3365L;
     0x3f0bd3e23d9218e2L |]

let sac_s =
  [| 0x3f68089dc95bdfd8L; 0x3f44b1684ee92a6cL; 0x3f26c1563e3a3361L;
     0x3f0bd3e23d92191aL |]

let f77_w =
  [| 0x3f50ca760db3dabaL; 0x3f2ca1991ac557f7L; 0x3f0f67a15a2f5495L;
     0x3ef33323656e5923L; 0x3ed8b633a037f57aL; 0x3ec05d61f8dc861aL;
     0x3ea615eafb60b8a5L; 0x3e8e3736f00df723L; 0x3e74e337c01a4444L;
     0x3e5d1f4f953ef081L; 0x3e447159c5601038L; 0x3e2cde2240d33e1cL;
     0x3e147bf46970d3dcL; 0x3dfd3261cbdcdbbeL; 0x3de4e30e8ffaeb4dL;
     0x3dcdfc55e2156267L; 0x3db596e78104714bL; 0x3d9f2c8f6b69d5c1L;
     0x3d8690351f9212dbL; 0x3d705e5a64ff50f0L; 0x3d57ccb451c35f09L;
     0x3d4156149bd63e72L; 0x3d294d84457619f1L; 0x3d127f3332cccbc2L;
     0x3cfb165171e2dddaL; 0x3ce3dd09b1d17adeL; 0x3ccd2d0cfbd92515L;
     0x3cb574e86e498fccL; 0x3c9f9b8b1a1f490dL; 0x3c8758eee996156eL;
     0x3c7188cf4300a007L; 0x3c5cf019aae5faa4L; 0x3c50979e0eae61c2L;
     0x3c499af843889dc8L; 0x3c47c23faeec498aL; 0x3c47cc141a697384L;
     0x3c4776fcb5c412fdL; 0x3c4750dcf3ae88cbL; 0x3c470d3d612c42f3L;
     0x3c4718332e67c92eL |]

let c_w =
  [| 0x3f50ca760db3dabaL; 0x3f2ca1991ac557f9L; 0x3f0f67a15a2f5499L;
     0x3ef33323656e5925L; 0x3ed8b633a037f5a6L; 0x3ec05d61f8dc8629L;
     0x3ea615eafb60b529L; 0x3e8e3736f00dff72L; 0x3e74e337c01a33b9L;
     0x3e5d1f4f953f623dL; 0x3e447159c55fc73dL; 0x3e2cde2240d351feL;
     0x3e147bf4696f5b8dL; 0x3dfd3261cbe3413dL; 0x3de4e30e900b90f3L;
     0x3dcdfc55e1b13655L; 0x3db596e7820d092dL; 0x3d9f2c8f6b9734adL;
     0x3d8690352019aa0bL; 0x3d705e5a61098684L; 0x3d57ccb480690511L;
     0x3d4156146c130f6eL; 0x3d294d82f67d4314L; 0x3d127f371cda6b5dL;
     0x3cfb164d002da380L; 0x3ce3dd12fdf5fa73L; 0x3ccd2d0fc9c330e1L;
     0x3cb574ff065c7522L; 0x3c9f9eaa218fac62L; 0x3c875f5f5406bfc7L;
     0x3c719fba7a53e291L; 0x3c5dd422df5a29dbL; 0x3c516fa90279f31fL;
     0x3c4c238a37096e64L; 0x3c4ab04264dd4517L; 0x3c492049f70ff6e8L;
     0x3c4aacbae3c41a31L; 0x3c4a09a4e3d0f674L; 0x3c49bcde9585a4cbL;
     0x3c49ff88b7a92bf7L |]

let sac_w =
  [| 0x3f50ca760db3dabcL; 0x3f2ca1991ac55802L; 0x3f0f67a15a2f549fL;
     0x3ef33323656e5903L; 0x3ed8b633a037f4dcL; 0x3ec05d61f8dc862cL;
     0x3ea615eafb60b5e8L; 0x3e8e3736f00df8c8L; 0x3e74e337c01a5305L;
     0x3e5d1f4f953f8664L; 0x3e447159c55f776bL; 0x3e2cde2240d206edL;
     0x3e147bf46971cd58L; 0x3dfd3261cbdf8c49L; 0x3de4e30e8fee0786L;
     0x3dcdfc55e1f3a888L; 0x3db596e78274923cL; 0x3d9f2c8f6bf58ca7L;
     0x3d86903519df9a11L; 0x3d705e5a7509ca2aL; 0x3d57ccb42a8e541aL;
     0x3d41561533bb6658L; 0x3d294d82b98c1991L; 0x3d127f3357816cffL;
     0x3cfb165646a8e015L; 0x3ce3dd0842b3aa78L; 0x3ccd2cd98e8a4ddbL;
     0x3cb575362f1187d2L; 0x3c9f9b5681b42c91L; 0x3c87604c111280c3L;
     0x3c71a3d057ae7010L; 0x3c5d4d9b6d8f856fL; 0x3c51ee4fa8cbc0d6L;
     0x3c4d2f03f327a68fL; 0x3c4c04dd1cc40e9bL; 0x3c4b72a66562f6ffL;
     0x3c4b212e9877fd73L; 0x3c4b505d8bd42dffL; 0x3c4af1bc4993377dL;
     0x3c4b8bf6c6cf884dL |]

let check_golden name golden norms =
  Alcotest.(check int) (name ^ ": iteration count") (Array.length golden)
    (Array.length norms);
  Array.iteri
    (fun i bits ->
      let got = Int64.bits_of_float norms.(i) in
      if not (Int64.equal bits got) then
        Alcotest.failf "%s: iteration %d diverged: expected %h (0x%LxL), got %h (0x%LxL)"
          name (i + 1)
          (Int64.float_of_bits bits) bits norms.(i) got)
    golden

let test_golden_s () =
  check_golden "f77/S" f77_s (Mg_f77.residual_norms Classes.class_s);
  check_golden "c/S" c_s (Mg_c.residual_norms Classes.class_s);
  check_golden "sac/S" sac_s (Mg_sac.residual_norms Classes.class_s)

let test_golden_w () =
  check_golden "f77/W" f77_w (Mg_f77.residual_norms Classes.class_w);
  check_golden "c/W" c_w (Mg_c.residual_norms Classes.class_w);
  check_golden "sac/W" sac_w (Mg_sac.residual_norms Classes.class_w)

let suite =
  ( "verify",
    [ Alcotest.test_case "norm2u3" `Quick test_norm2u3;
      Alcotest.test_case "check verified/failed" `Quick test_check_verified;
      Alcotest.test_case "check no reference" `Quick test_check_no_reference;
      Alcotest.test_case "at-floor semantics" `Quick test_at_floor_semantics;
      Alcotest.test_case "status_ok" `Quick test_status_ok;
      Alcotest.test_case "classes table" `Quick test_classes_table;
      Alcotest.test_case "custom class validation" `Quick test_custom_class_validation;
      Alcotest.test_case "golden residual norms (class S)" `Quick test_golden_s;
      Alcotest.test_case "golden residual norms (class W)" `Slow test_golden_w;
    ] )
