open Mg_ndarray
open Mg_withloop
module E = Wl.Expr

let check_float = Alcotest.(check (float 1e-12))

let nd_testable = Alcotest.testable Ndarray.pp (Ndarray.equal ~eps:1e-12)

let all_levels f =
  List.iter
    (fun l -> Wl.with_opt_level l (fun () -> f (Wl.opt_level_to_string l)))
    [ Wl.O0; Wl.O1; Wl.O2; Wl.O3 ]

let test_genarray_const () =
  all_levels (fun lvl ->
      let a = Wl.force (Wl.genarray [| 2; 3 |] [ (Generator.full [| 2; 3 |], E.const 7.0) ]) in
      Alcotest.check nd_testable lvl (Ndarray.fill_value [| 2; 3 |] 7.0) a)

let test_genarray_default () =
  all_levels (fun lvl ->
      let shp = [| 5 |] in
      let part = (Generator.make ~lb:[| 1 |] ~ub:[| 4 |] (), E.const 1.0) in
      let a = Wl.force (Wl.genarray ~default:9.0 shp [ part ]) in
      Alcotest.check nd_testable lvl (Ndarray.of_array1 [| 9.0; 1.0; 1.0; 1.0; 9.0 |]) a)

let test_genarray_indexed () =
  all_levels (fun lvl ->
      let shp = [| 3; 3 |] in
      let src = Ndarray.init shp (fun iv -> float_of_int ((10 * iv.(0)) + iv.(1))) in
      let a =
        Wl.force
          (Wl.genarray shp
             [ (Generator.full shp, E.read (Wl.of_ndarray src)) ])
      in
      Alcotest.check nd_testable lvl src a)

let test_modarray () =
  all_levels (fun lvl ->
      let base = Ndarray.fill_value [| 4; 4 |] 1.0 in
      let gen = Generator.interior [| 4; 4 |] 1 in
      let a = Wl.force (Wl.modarray (Wl.of_ndarray base) [ (gen, E.const 5.0) ]) in
      let expected =
        Ndarray.init [| 4; 4 |] (fun iv -> if Generator.mem gen iv then 5.0 else 1.0)
      in
      Alcotest.check nd_testable lvl expected a)

let test_strided_part () =
  all_levels (fun lvl ->
      let shp = [| 6 |] in
      let gen = Generator.make ~step:[| 2 |] ~lb:[| 0 |] ~ub:shp () in
      let a = Wl.force (Wl.genarray ~default:0.0 shp [ (gen, E.const 1.0) ]) in
      Alcotest.check nd_testable lvl (Ndarray.of_array1 [| 1.0; 0.0; 1.0; 0.0; 1.0; 0.0 |]) a)

let test_multi_part () =
  all_levels (fun lvl ->
      let shp = [| 6 |] in
      let p1 = (Generator.make ~lb:[| 0 |] ~ub:[| 2 |] (), E.const 1.0) in
      let p2 = (Generator.make ~lb:[| 4 |] ~ub:[| 6 |] (), E.const 2.0) in
      let a = Wl.force (Wl.genarray ~default:(-1.0) shp [ p1; p2 ]) in
      Alcotest.check nd_testable lvl
        (Ndarray.of_array1 [| 1.0; 1.0; -1.0; -1.0; 2.0; 2.0 |])
        a)

let test_stencil_body () =
  all_levels (fun lvl ->
      let shp = [| 8 |] in
      let src = Ndarray.init shp (fun iv -> float_of_int iv.(0)) in
      let s = Wl.of_ndarray src in
      let gen = Generator.interior shp 1 in
      let body = E.(const 0.5 * read_offset s [| -1 |] + const 0.5 * read_offset s [| 1 |]) in
      let a = Wl.force (Wl.modarray s [ (gen, body) ]) in
      (* Average of neighbours of a linear ramp is the ramp itself. *)
      Alcotest.check nd_testable lvl src a)

let test_opaque_body () =
  all_levels (fun lvl ->
      let shp = [| 4; 4 |] in
      let body = E.of_fun (fun iv -> float_of_int (iv.(0) * iv.(1))) in
      let a = Wl.force (Wl.genarray shp [ (Generator.full shp, body) ]) in
      let expected = Ndarray.init shp (fun iv -> float_of_int (iv.(0) * iv.(1))) in
      Alcotest.check nd_testable lvl expected a)

let test_arith_expr () =
  all_levels (fun lvl ->
      let shp = [| 5 |] in
      let x = Wl.of_ndarray (Ndarray.init shp (fun iv -> float_of_int iv.(0))) in
      let body = E.(sqrt (read x * read x) + const 1.0 - neg (const 1.0)) in
      let a = Wl.force (Wl.genarray shp [ (Generator.full shp, body) ]) in
      let expected = Ndarray.init shp (fun iv -> float_of_int iv.(0) +. 2.0) in
      Alcotest.check nd_testable lvl expected a)

let test_fold_sum () =
  all_levels (fun lvl ->
      let shp = [| 10 |] in
      let x = Wl.of_ndarray (Ndarray.init shp (fun iv -> float_of_int iv.(0))) in
      let s = Wl.fold ~op:Exec.Fadd ~neutral:0.0 (Generator.full shp) (E.read x) in
      check_float lvl 45.0 s)

let test_fold_over_subrange () =
  let shp = [| 10 |] in
  let x = Wl.of_ndarray (Ndarray.init shp (fun iv -> float_of_int iv.(0))) in
  let gen = Generator.make ~step:[| 2 |] ~lb:[| 1 |] ~ub:[| 10 |] () in
  let s = Wl.fold ~op:Exec.Fadd ~neutral:0.0 gen (E.read x) in
  check_float "odd sum" 25.0 s

let test_fold_max_min () =
  let shp = [| 3; 3 |] in
  let x = Wl.of_ndarray (Ndarray.init shp (fun iv -> float_of_int ((iv.(0) * 3) + iv.(1)))) in
  check_float "max" 8.0 (Wl.fold ~op:Exec.Fmax ~neutral:Float.neg_infinity (Generator.full shp) (E.read x));
  check_float "min" 0.0 (Wl.fold ~op:Exec.Fmin ~neutral:Float.infinity (Generator.full shp) (E.read x))

let test_fold_nonlinear_body () =
  let shp = [| 4 |] in
  let x = Wl.of_ndarray (Ndarray.of_array1 [| 1.0; 2.0; 3.0; 4.0 |]) in
  let s = Wl.fold ~op:Exec.Fadd ~neutral:0.0 (Generator.full shp) E.(read x * read x) in
  check_float "sum of squares" 30.0 s

let test_force_idempotent () =
  let shp = [| 3 |] in
  let node = Wl.genarray shp [ (Generator.full shp, E.const 1.0) ] in
  let a = Wl.force node and b = Wl.force node in
  Alcotest.(check bool) "same physical array" true (a == b)

let test_rank_generic () =
  (* The same code runs on rank 1, 2, 3 and 4 arrays. *)
  List.iter
    (fun shp ->
      let x = Wl.of_ndarray (Ndarray.fill_value shp 2.0) in
      let a = Wl.force (Wl.genarray shp [ (Generator.full shp, E.(read x * read x)) ]) in
      Alcotest.check nd_testable (Shape.to_string shp) (Ndarray.fill_value shp 4.0) a)
    [ [| 5 |]; [| 3; 4 |]; [| 2; 3; 4 |]; [| 2; 2; 2; 2 |] ]

let test_parallel_matches_sequential () =
  let shp = [| 32; 32 |] in
  let src = Ndarray.init shp (fun iv -> float_of_int ((iv.(0) * 31) + (7 * iv.(1)))) in
  let make () =
    let s = Wl.of_ndarray src in
    let gen = Generator.interior shp 1 in
    Wl.force
      (Wl.modarray s
         [ (gen, E.(read_offset s [| -1; 0 |] + read_offset s [| 1; 0 |] + read_offset s [| 0; -1 |]
                    + read_offset s [| 0; 1 |] - const 4.0 * read s)) ])
  in
  let seq = make () in
  let par = Wl.with_threads 2 (fun () -> Wl.with_par_threshold 16 make) in
  Alcotest.check nd_testable "parallel = sequential" seq par

let test_out_of_bounds_read_rejected () =
  let shp = [| 4 |] in
  let x = Wl.of_ndarray (Ndarray.create shp) in
  (* Reading iv+1 over the full index space escapes the source. *)
  let node = Wl.genarray shp [ (Generator.full shp, E.read_offset x [| 1 |]) ] in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Wl.force node);
       false
     with _ -> true)

let suite =
  ( "withloop",
    [ Alcotest.test_case "genarray const" `Quick test_genarray_const;
      Alcotest.test_case "genarray default" `Quick test_genarray_default;
      Alcotest.test_case "genarray indexed" `Quick test_genarray_indexed;
      Alcotest.test_case "modarray" `Quick test_modarray;
      Alcotest.test_case "strided part" `Quick test_strided_part;
      Alcotest.test_case "multiple parts" `Quick test_multi_part;
      Alcotest.test_case "stencil body" `Quick test_stencil_body;
      Alcotest.test_case "opaque body" `Quick test_opaque_body;
      Alcotest.test_case "arithmetic expressions" `Quick test_arith_expr;
      Alcotest.test_case "fold sum" `Quick test_fold_sum;
      Alcotest.test_case "fold over subrange" `Quick test_fold_over_subrange;
      Alcotest.test_case "fold max/min" `Quick test_fold_max_min;
      Alcotest.test_case "fold nonlinear body" `Quick test_fold_nonlinear_body;
      Alcotest.test_case "force idempotent" `Quick test_force_idempotent;
      Alcotest.test_case "rank generic" `Quick test_rank_generic;
      Alcotest.test_case "parallel matches sequential" `Quick test_parallel_matches_sequential;
      Alcotest.test_case "out-of-bounds read rejected" `Quick test_out_of_bounds_read_rejected;
    ] )
